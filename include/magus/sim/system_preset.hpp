#pragma once
// Hardware specifications for the simulated heterogeneous nodes.
//
// Three presets mirror the paper's testbeds (section 5): Intel+A100,
// Intel+4A100, and Intel+Max1550. Power-model coefficients are calibrated to
// the paper's headline magnitudes (DESIGN.md section 5): the Intel+A100
// preset shows ~80 W package delta between min and max uncore under a
// UNet-like load and ~30 W idle power for a single A100-40GB.

#include <string>

namespace magus::sim {

/// CPU (per-node) specification. Power coefficients are per socket.
struct CpuSpec {
  std::string model;
  int sockets = 2;
  /// Uncore frequency domains per socket (package_XX_die_YY granularity).
  /// 1 on the paper's Ice Lake SP testbeds; >1 models multi-die parts whose
  /// per-socket uncore power and bandwidth split evenly across dies.
  int dies_per_socket = 1;
  int cores_per_socket = 40;
  double tdp_w = 270.0;  ///< per socket

  // Frequency domains.
  double uncore_min_ghz = 0.8;
  double uncore_max_ghz = 2.2;
  double core_min_ghz = 0.8;
  double core_max_ghz = 3.4;

  // Core power: P_core = idle + dyn * util * (f/f_max)^2.
  double core_idle_w = 36.0;
  double core_dyn_w = 110.0;

  // Uncore power: P_un = leak + (k1*f + k2*f^2) * (floor + (1-floor)*util).
  double uncore_leak_w = 5.0;
  double uncore_k1_w_per_ghz = 2.0;
  double uncore_k2_w_per_ghz2 = 13.0;
  double uncore_util_floor = 0.35;

  // DRAM power: P_dram = idle + dyn * (delivered / peak).
  double dram_idle_w = 8.0;
  double dram_dyn_w = 25.0;

  // Memory bandwidth: capacity(f) = peak * (floor + (1-floor) * f/f_max),
  // per socket.
  double peak_mem_bw_mbps = 80'000.0;
  double bw_floor_frac = 0.25;

  // Monitoring access costs (drive Table 2's overhead gap emergently).
  double msr_read_latency_s = 0.0018;   ///< one per-core MSR read
  double pcm_read_latency_s = 0.1;      ///< one aggregated PCM system sweep
  double monitor_base_power_w = 1.5;    ///< monitor process active power
  double monitor_per_read_power_w = 0.05;
  double pcm_equivalent_reads = 32.0;   ///< PCM sweep ~= this many MSR reads

  [[nodiscard]] int total_cores() const noexcept { return sockets * cores_per_socket; }
};

/// GPU (per-board) specification.
struct GpuSpec {
  std::string model;
  int count = 1;
  double idle_w = 30.0;
  double peak_w = 400.0;
  double base_clock_ghz = 0.765;
  double max_clock_ghz = 1.410;
};

struct SystemSpec {
  std::string name;
  CpuSpec cpu;
  GpuSpec gpu;
  /// Stock firmware starts throttling the uncore at this fraction of TDP.
  double tdp_backoff_frac = 0.93;
  /// NUMA skew in [0,1): this fraction of memory demand pins to domain 0,
  /// the remainder spreads evenly across all uncore domains. 0 = uniform.
  /// Any non-zero value (or dies_per_socket > 1) switches the node kernel
  /// to the per-domain memory path.
  double numa_skew = 0.0;
};

/// Chameleon node: 2x Xeon Platinum 8380 + 1x A100-40GB (uncore 0.8-2.2 GHz).
[[nodiscard]] SystemSpec intel_a100();

/// Same CPUs + 4x A100-80GB over PCIe (idle floor ~200 W across boards).
[[nodiscard]] SystemSpec intel_4a100();

/// 2x Xeon Max 9462 + Data Center GPU Max 1550 (uncore 0.8-2.5 GHz).
[[nodiscard]] SystemSpec intel_max1550();

/// Portability demonstration (paper section 6.6): an AMD EPYC-style node
/// whose "uncore" is the Infinity Fabric / SoC domain (FCLK ladder driven
/// through an amd_hsmp-like interface) paired with an MI250X-class GPU.
/// MAGUS's logic is unchanged; only the ladder and power curve differ.
[[nodiscard]] SystemSpec amd_mi250();

/// Lookup by name ("intel_a100", "intel_4a100", "intel_max1550",
/// "amd_mi250").
[[nodiscard]] SystemSpec system_by_name(const std::string& name);

}  // namespace magus::sim
