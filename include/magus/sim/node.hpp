#pragma once
// NodeModel: the whole heterogeneous node -- sockets (core + uncore + DRAM),
// GPUs, the stock firmware governor, and the cumulative counters the hw
// backends expose to runtimes. The per-tick arithmetic is kern::node_tick
// (sim/kernel.hpp), instantiated here over the member model objects; the
// batched fleet path instantiates the same template over SoA storage, which
// is what keeps the two engines bit-identical.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "magus/common/quantity.hpp"
#include "magus/common/rng.hpp"
#include "magus/sim/core_model.hpp"
#include "magus/sim/firmware_governor.hpp"
#include "magus/sim/gpu_model.hpp"
#include "magus/sim/kernel.hpp"
#include "magus/sim/memory_system.hpp"
#include "magus/sim/system_preset.hpp"
#include "magus/sim/uncore_model.hpp"

namespace magus::sim {

class NodeModel {
 public:
  NodeModel(SystemSpec spec, std::uint64_t noise_seed);

  /// Advance the node by dt under `slice`; `monitor_extra_w` is the power of
  /// an actively executing monitoring runtime (lands on socket 0).
  TickOutput tick(common::Seconds now, double dt, const WorkSlice& slice,
                  double monitor_extra_w);

  [[nodiscard]] const SystemSpec& spec() const noexcept { return spec_; }

  // --- state the hw backends expose ---------------------------------------
  [[nodiscard]] int socket_count() const noexcept { return spec_.cpu.sockets; }
  [[nodiscard]] int dies_per_socket() const noexcept { return spec_.cpu.dies_per_socket; }
  /// Uncore domain count (sockets * dies_per_socket).
  [[nodiscard]] int domain_count() const noexcept {
    return static_cast<int>(uncores_.size());
  }
  /// Index is a *domain* (socket-major: socket * dies_per_socket + die);
  /// with one die per socket it coincides with the socket index.
  [[nodiscard]] UncoreModel& uncore(int domain) {
    return uncores_[static_cast<std::size_t>(domain)];
  }
  [[nodiscard]] const UncoreModel& uncore(int domain) const {
    return uncores_[static_cast<std::size_t>(domain)];
  }
  [[nodiscard]] CoreModel& cores() noexcept { return cores_; }
  [[nodiscard]] const CoreModel& cores() const noexcept { return cores_; }
  [[nodiscard]] GpuModel& gpu() noexcept { return gpu_; }
  [[nodiscard]] const GpuModel& gpu() const noexcept { return gpu_; }

  /// Cumulative DRAM traffic (MB) -- what the PCM-style counter reports.
  [[nodiscard]] double total_traffic_mb() const noexcept { return traffic_mb_; }
  /// Per-domain cumulative DRAM traffic (MB).
  [[nodiscard]] double domain_traffic_mb(int domain) const {
    return domain_traffic_mb_[static_cast<std::size_t>(domain)];
  }
  /// Per-domain cumulative uncore energy (J) -- per-domain joules-saved.
  [[nodiscard]] double domain_uncore_energy_j(int domain) const {
    return domain_uncore_energy_j_[static_cast<std::size_t>(domain)];
  }
  /// Per-domain integral of the memory stretch factor over sim time (s).
  [[nodiscard]] double domain_stretch_time_s(int domain) const {
    return domain_stretch_time_s_[static_cast<std::size_t>(domain)];
  }

  [[nodiscard]] double pkg_energy_j(int socket) const {
    return pkg_energy_j_[static_cast<std::size_t>(socket)];
  }
  [[nodiscard]] double dram_energy_j(int socket) const {
    return dram_energy_j_[static_cast<std::size_t>(socket)];
  }
  [[nodiscard]] double total_pkg_energy_j() const noexcept;
  [[nodiscard]] double total_dram_energy_j() const noexcept;

  /// Node-wide deliverable bandwidth at current uncore frequencies.
  [[nodiscard]] double capacity_mbps() const noexcept;

  [[nodiscard]] const TickOutput& last() const noexcept { return last_; }

 private:
  struct LaneView;  // adapts the member objects to the kern::node_tick concept

  SystemSpec spec_;
  kern::NodeParams params_;
  std::vector<UncoreModel> uncores_;
  std::vector<FirmwareGovernor> firmware_;
  CoreModel cores_;
  GpuModel gpu_;
  common::Rng noise_;
  double traffic_mb_ = 0.0;
  std::vector<double> pkg_energy_j_;
  std::vector<double> dram_energy_j_;
  std::vector<double> last_socket_pkg_w_;
  std::vector<double> domain_traffic_mb_;
  std::vector<double> domain_uncore_energy_j_;
  std::vector<double> domain_stretch_time_s_;
  TickOutput last_;
};

}  // namespace magus::sim
