#pragma once
// Per-socket uncore domain: frequency state machine, power curve, and the
// bandwidth-capacity curve that couples uncore frequency to deliverable
// memory throughput.

#include "magus/hw/uncore_freq.hpp"
#include "magus/sim/system_preset.hpp"

namespace magus::sim {

class UncoreModel {
 public:
  explicit UncoreModel(const CpuSpec& spec);

  /// Policy-programmed max ratio limit (what MSR 0x620 writes set).
  void set_policy_limit_ghz(double ghz);
  [[nodiscard]] double policy_limit_ghz() const noexcept { return policy_limit_ghz_; }

  /// Firmware cap applied on top of the policy limit (TDP back-off).
  void set_firmware_cap_ghz(double ghz);
  [[nodiscard]] double firmware_cap_ghz() const noexcept { return firmware_cap_ghz_; }

  /// Advance the frequency state machine: the effective frequency slews
  /// toward min(policy limit, firmware cap) with a short transition time.
  void tick(double dt);

  /// Effective uncore frequency right now.
  [[nodiscard]] double freq_ghz() const noexcept { return freq_ghz_; }

  /// Deliverable DRAM bandwidth at the current frequency (per socket, MB/s).
  [[nodiscard]] double capacity_mbps() const noexcept;
  [[nodiscard]] double capacity_mbps_at(double freq_ghz) const noexcept;

  /// Uncore power at the current frequency and a given utilisation in [0,1].
  [[nodiscard]] double power_w(double utilization) const noexcept;

  [[nodiscard]] const hw::UncoreFreqLadder& ladder() const noexcept { return ladder_; }

 private:
  CpuSpec spec_;
  hw::UncoreFreqLadder ladder_;
  double policy_limit_ghz_;
  double firmware_cap_ghz_;
  double freq_ghz_;
  /// Uncore frequency transitions complete within ~10 ms (MSR writes are
  /// near-instant; PLL relock and traffic draining dominate).
  static constexpr double kSlewGhzPerS = 150.0;
};

}  // namespace magus::sim
