#pragma once
// Per-socket uncore domain: frequency state machine, power curve, and the
// bandwidth-capacity curve that couples uncore frequency to deliverable
// memory throughput.

#include "magus/common/quantity.hpp"
#include "magus/hw/uncore_freq.hpp"
#include "magus/sim/system_preset.hpp"

namespace magus::sim {

class UncoreModel {
 public:
  explicit UncoreModel(const CpuSpec& spec);

  /// Policy-programmed max ratio limit (what MSR 0x620 writes set).
  void set_policy_limit(common::Ghz freq);
  [[nodiscard]] common::Ghz policy_limit() const noexcept { return policy_limit_; }

  /// Firmware cap applied on top of the policy limit (TDP back-off).
  void set_firmware_cap(common::Ghz freq);
  [[nodiscard]] common::Ghz firmware_cap() const noexcept { return firmware_cap_; }

  /// Advance the frequency state machine: the effective frequency slews
  /// toward min(policy limit, firmware cap) with a short transition time.
  void tick(common::Seconds dt);

  /// Effective uncore frequency right now.
  [[nodiscard]] common::Ghz freq() const noexcept { return freq_; }

  /// Deliverable DRAM bandwidth at the current frequency (per socket).
  [[nodiscard]] common::Mbps capacity() const noexcept;
  [[nodiscard]] common::Mbps capacity_at(common::Ghz freq) const noexcept;

  /// Uncore power at the current frequency and a given utilisation in [0,1].
  [[nodiscard]] common::Watts power(double utilization) const noexcept;

  [[nodiscard]] const hw::UncoreFreqLadder& ladder() const noexcept { return ladder_; }

 private:
  CpuSpec spec_;
  hw::UncoreFreqLadder ladder_;
  common::Ghz policy_limit_;
  common::Ghz firmware_cap_;
  common::Ghz freq_;
  /// Uncore frequency transitions complete within ~10 ms (MSR writes are
  /// near-instant; PLL relock and traffic draining dominate).
  static constexpr double kSlewGhzPerS = 150.0;
};

}  // namespace magus::sim
