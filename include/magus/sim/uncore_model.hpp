#pragma once
// Per-socket uncore domain: frequency state machine, power curve, and the
// bandwidth-capacity curve that couples uncore frequency to deliverable
// memory throughput. The arithmetic lives in sim/kernel.hpp (kern::*); this
// class is the contract-checked API wrapper around a kern::UncoreState.

#include "magus/common/quantity.hpp"
#include "magus/hw/uncore_freq.hpp"
#include "magus/sim/kernel.hpp"
#include "magus/sim/system_preset.hpp"

namespace magus::sim {

class UncoreModel {
 public:
  /// `share` > 1 models one die of a multi-die socket: power coefficients
  /// and peak bandwidth divide evenly across the dies (exact no-op at 1).
  explicit UncoreModel(const CpuSpec& spec, int share = 1);

  /// Policy-programmed max ratio limit (what MSR 0x620 writes set).
  void set_policy_limit(common::Ghz freq);
  [[nodiscard]] common::Ghz policy_limit() const noexcept {
    return common::Ghz(st_.policy_limit_ghz);
  }

  /// Firmware cap applied on top of the policy limit (TDP back-off).
  void set_firmware_cap(common::Ghz freq);
  [[nodiscard]] common::Ghz firmware_cap() const noexcept {
    return common::Ghz(st_.firmware_cap_ghz);
  }

  /// Advance the frequency state machine: the effective frequency slews
  /// toward min(policy limit, firmware cap) with a short transition time.
  void tick(common::Seconds dt);

  /// Effective uncore frequency right now.
  [[nodiscard]] common::Ghz freq() const noexcept { return common::Ghz(st_.freq_ghz); }

  /// Deliverable DRAM bandwidth at the current frequency (per socket).
  [[nodiscard]] common::Mbps capacity() const noexcept;
  [[nodiscard]] common::Mbps capacity_at(common::Ghz freq) const noexcept;

  /// Uncore power at the current frequency and a given utilisation in [0,1].
  [[nodiscard]] common::Watts power(double utilization) const noexcept;

  [[nodiscard]] const hw::UncoreFreqLadder& ladder() const noexcept { return ladder_; }

  /// Raw kernel state, shared with kern::node_tick.
  [[nodiscard]] kern::UncoreState& st() noexcept { return st_; }
  [[nodiscard]] const kern::UncoreState& st() const noexcept { return st_; }

 private:
  hw::UncoreFreqLadder ladder_;
  kern::UncoreParams params_;
  kern::UncoreState st_;
};

}  // namespace magus::sim
