#pragma once
// Fleet description: which simulated nodes exist, what each one runs, and
// under which uncore policy.
//
// A FleetManifest is the submit-side API of magus::fleet -- a builder-style
// config object (fluent setters, whole-manifest validation that reports every
// problem at once) with a JSONL wire format shared with the telemetry event
// tooling: line one is a `fleet_manifest` header, followed by one
// `fleet_node` line per NodeSpec. Seeds are serialized as strings so 64-bit
// values survive the double-typed JSON number path.

#include <cstdint>
#include <string>
#include <vector>

#include "magus/common/quantity.hpp"
#include "magus/fault/config.hpp"
#include "magus/wl/jitter.hpp"

namespace magus::fleet {

/// One node template: a system preset running one workload under one policy.
/// `count` stamps out that many independent nodes (each still gets its own
/// RNG stream and engine seed from its fleet-wide node index).
class NodeSpec {
 public:
  NodeSpec& name(std::string v) {
    name_ = std::move(v);
    return *this;
  }
  NodeSpec& system(std::string v) {
    system_ = std::move(v);
    return *this;
  }
  NodeSpec& app(std::string v) {
    app_ = std::move(v);
    return *this;
  }
  NodeSpec& policy(std::string v) {
    policy_ = std::move(v);
    return *this;
  }
  NodeSpec& gpus(int v) {
    gpus_ = v;
    return *this;
  }
  NodeSpec& static_uncore(common::Ghz v) {
    static_uncore_ = v;
    return *this;
  }
  /// Uncore dies per socket. 1 (the default) keeps the node on the legacy
  /// single-domain control path; >1 activates per-domain decisions.
  NodeSpec& dies(int v) {
    dies_ = v;
    return *this;
  }
  /// Extra memory-traffic share [0, 1) pinned on the first die of each
  /// socket; the remainder spreads evenly over all dies.
  NodeSpec& numa_skew(double v) {
    numa_skew_ = v;
    return *this;
  }
  /// Static per-node power cap in Watts (0 = uncapped). Feeds the cap-aware
  /// policies directly; under a fleet power budget it also tightens the
  /// allocator's ceiling for this node.
  NodeSpec& power_cap_w(double v) {
    power_cap_w_ = v;
    return *this;
  }
  NodeSpec& count(int v) {
    count_ = v;
    return *this;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& system() const noexcept { return system_; }
  [[nodiscard]] const std::string& app() const noexcept { return app_; }
  [[nodiscard]] const std::string& policy() const noexcept { return policy_; }
  [[nodiscard]] int gpus() const noexcept { return gpus_; }
  [[nodiscard]] common::Ghz static_uncore() const noexcept { return static_uncore_; }
  [[nodiscard]] int dies() const noexcept { return dies_; }
  [[nodiscard]] double numa_skew() const noexcept { return numa_skew_; }
  [[nodiscard]] double power_cap_w() const noexcept { return power_cap_w_; }
  [[nodiscard]] int count() const noexcept { return count_; }

  /// Every problem with this spec (empty = valid). `prefix` labels the spec
  /// in the messages (e.g. "node[3] 'web'").
  [[nodiscard]] std::vector<std::string> validate(const std::string& prefix = "") const;

 private:
  std::string name_ = "node";
  std::string system_ = "intel_a100";
  std::string app_ = "unet";
  std::string policy_ = "magus";
  int gpus_ = 1;
  common::Ghz static_uncore_{0.0};
  int dies_ = 1;
  double numa_skew_ = 0.0;
  double power_cap_w_ = 0.0;
  int count_ = 1;
};

/// The whole fleet: node templates plus the fleet-wide determinism inputs
/// (master seed, workload jitter, shard size).
class FleetManifest {
 public:
  FleetManifest& seed(std::uint64_t v) {
    seed_ = v;
    return *this;
  }
  FleetManifest& shard_size(int v) {
    shard_size_ = v;
    return *this;
  }
  FleetManifest& jitter(const wl::JitterConfig& v) {
    jitter_ = v;
    return *this;
  }
  FleetManifest& fault(const fault::FaultConfig& v) {
    fault_ = v;
    return *this;
  }
  FleetManifest& fault_rate(double v) {
    fault_.rate = v;
    return *this;
  }
  FleetManifest& fault_seed(std::uint64_t v) {
    fault_.seed = v;
    return *this;
  }
  /// Global fleet power budget in Watts (0 = budgeting off). When active,
  /// the FleetRunner water-fills this across nodes per `budget_epoch_s` of
  /// simulated time (fleet/allocator.hpp) and each node's cap-aware policy
  /// receives its slice as a PowerCapSchedule.
  FleetManifest& power_budget_w(double v) {
    power_budget_w_ = v;
    return *this;
  }
  FleetManifest& budget_epoch_s(double v) {
    budget_epoch_s_ = v;
    return *this;
  }
  FleetManifest& add_node(NodeSpec spec) {
    nodes_.push_back(std::move(spec));
    return *this;
  }
  /// Apply `fn` to every node template in place (the CLI/daemon override
  /// loops: replay a saved fleet under a different policy, cap, or die
  /// count without editing the file).
  template <typename Fn>
  FleetManifest& mutate_nodes(Fn&& fn) {
    for (NodeSpec& node : nodes_) fn(node);
    return *this;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] int shard_size() const noexcept { return shard_size_; }
  [[nodiscard]] const wl::JitterConfig& jitter() const noexcept { return jitter_; }
  [[nodiscard]] const fault::FaultConfig& fault() const noexcept { return fault_; }
  [[nodiscard]] double power_budget_w() const noexcept { return power_budget_w_; }
  [[nodiscard]] double budget_epoch_s() const noexcept { return budget_epoch_s_; }
  [[nodiscard]] const std::vector<NodeSpec>& nodes() const noexcept { return nodes_; }

  /// All validation problems at once (empty = valid): unknown systems, apps,
  /// and policies; non-positive counts/gpus/shard size; a "static" policy
  /// without a pin frequency; an empty fleet.
  [[nodiscard]] std::vector<std::string> validate() const;
  /// Throws common::ConfigError joining every validate() message.
  void validate_or_throw() const;

  /// Count-expanded per-node specs, in fleet order: template order, replicas
  /// adjacent, each replica renamed "<name>/<i>" when count > 1. The index
  /// into this vector is the node's identity for seeding and results.
  [[nodiscard]] std::vector<NodeSpec> expand() const;
  /// Total node count after count expansion.
  [[nodiscard]] std::size_t total_nodes() const;

  /// JSONL round-trip (see file header for the line format).
  [[nodiscard]] std::string to_jsonl() const;
  [[nodiscard]] static FleetManifest from_jsonl(const std::string& text);
  void save(const std::string& path) const;
  [[nodiscard]] static FleetManifest load(const std::string& path);

 private:
  std::uint64_t seed_ = 2025;
  int shard_size_ = 16;
  wl::JitterConfig jitter_;
  fault::FaultConfig fault_;
  double power_budget_w_ = 0.0;
  double budget_epoch_s_ = 1.0;
  std::vector<NodeSpec> nodes_;
};

/// Deterministic synthetic fleet for demos, smoke tests, and benchmarks:
/// `nodes` nodes drawn round-robin over the system presets, the Table 1
/// workload catalog, and the registered runtime policies (plus a slice of
/// default-policy nodes so rollups always have an in-fleet reference).
/// Same (nodes, seed) always yields the same manifest.
[[nodiscard]] FleetManifest synth_fleet(int nodes, std::uint64_t seed);

}  // namespace magus::fleet
