#pragma once
// Sharded fleet execution.
//
// FleetRunner turns a FleetManifest into per-node results and fleet rollups.
// Every node is simulated twice on identical inputs -- once under its
// configured policy and once under the stock-firmware "default" policy -- so
// savings are measured against the Intel-default fleet the paper compares to.
//
// Determinism contract (same as exp::run_repeated): node inputs depend only
// on (manifest seed, node index) -- the jitter stream is Rng(seed).fork(i)
// and the engine seed is seed * 1000003 + i -- nodes land in pre-sized slots
// by index, and aggregation walks the slots serially in index order. Shards
// only decide which worker simulates which node, so rollups are bit-identical
// for any job count and any shard size.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "magus/core/power_cap.hpp"
#include "magus/fleet/manifest.hpp"

namespace magus::telemetry {
class Counter;
class EventLog;
class Gauge;
class MetricsRegistry;
}  // namespace magus::telemetry

namespace magus::fleet {

/// Outcome of one node: its policy run against its default-policy twin.
struct NodeResult {
  std::size_t index = 0;  ///< position in FleetManifest::expand()
  std::string name;
  std::string system;
  std::string app;
  std::string policy;
  bool completed = false;          ///< policy run finished before the engine cap
  double runtime_s = 0.0;          ///< policy run
  double baseline_runtime_s = 0.0; ///< default-policy twin
  double energy_j = 0.0;           ///< policy run, CPU+DRAM+GPU
  double baseline_energy_j = 0.0;
  double joules_saved = 0.0;       ///< baseline_energy_j - energy_j
  double slowdown_pct = 0.0;       ///< runtime vs twin, positive = slower
  std::uint64_t ticks = 0;         ///< simulation steps, policy run + twin
  double control_latency_s = 0.0;  ///< policy run's avg monitoring invocation

  // Per-uncore-domain breakdown (socket-major: domain = socket * dies + die).
  // Always filled; a legacy single-die node has one domain per socket.
  int domains = 1;                           ///< sockets * dies_per_socket
  std::vector<double> domain_joules_saved;   ///< twin uncore J - run uncore J
  std::vector<double> domain_slowdown_pct;   ///< memory stretch time vs twin

  // Fault-weather outcome (all defaults when the fleet runs fault-free).
  bool degraded = false;            ///< policy fell back / node gave up actuating
  bool failed = false;              ///< every attempt threw; numerics are zeroed
  int attempts = 1;                 ///< simulation attempts consumed (1 = clean)
  std::uint64_t faults_injected = 0;  ///< faults the decorators delivered
  std::string error;                ///< last failure message ("" on success)

  /// Mean power cap the node ran under (0 = uncapped; fleet budgeting off
  /// and no manifest cap). Filled during the serial rollup.
  double power_cap_w = 0.0;
};

/// Budget accounting for one allocation epoch (only present when the
/// manifest sets a fleet power budget).
struct BudgetEpochRollup {
  std::size_t epoch = 0;
  double allocated_w = 0.0;  ///< sum of per-node allocations this epoch
  double consumed_w = 0.0;   ///< estimated fleet draw (node avg power x overlap)
  double clipped_w = 0.0;    ///< demand the allocator could not fund
};

/// Rollup over one uncore-domain index across every node that has it (a
/// domain-2 rollup covers only nodes with at least three domains). Failed
/// nodes are excluded exactly as in the fleet-wide percentiles.
struct DomainRollup {
  int domain = 0;  ///< socket-major domain index
  std::size_t nodes = 0;
  double joules_saved_total = 0.0;  ///< uncore-side savings vs the twins
  double slowdown_p50_pct = 0.0;    ///< memory stretch-time percentiles
  double slowdown_p95_pct = 0.0;
  double slowdown_p99_pct = 0.0;
};

/// Rollup over all nodes sharing one policy name.
struct PolicyRollup {
  std::string policy;
  std::size_t nodes = 0;
  std::size_t degraded_nodes = 0;  ///< ran to completion in fallback mode
  std::size_t failed_nodes = 0;    ///< excluded from the percentile vectors
  double joules_saved_total = 0.0;
  double slowdown_p50_pct = 0.0;
  double slowdown_p95_pct = 0.0;
  double slowdown_p99_pct = 0.0;
};

struct FleetResult {
  std::uint64_t seed = 0;
  std::size_t nodes_total = 0;
  std::uint64_t ticks_total = 0;  ///< simulation steps across all node runs
  std::size_t degraded_nodes = 0;
  std::size_t failed_nodes = 0;
  double joules_saved_total = 0.0;  ///< fleet vs the all-default fleet
  double slowdown_p50_pct = 0.0;
  double slowdown_p95_pct = 0.0;
  double slowdown_p99_pct = 0.0;
  std::vector<PolicyRollup> per_policy;  ///< sorted by policy name
  std::vector<DomainRollup> per_domain;  ///< by domain index, 0 first
  std::vector<NodeResult> nodes;         ///< fleet order

  // Fleet power budgeting (all zero / empty when the manifest has none --
  // the JSONL dump then carries no budget fields at all, so unbudgeted
  // rollups stay byte-identical to the pre-budget format).
  double power_budget_w = 0.0;
  double budget_epoch_s = 0.0;
  std::vector<BudgetEpochRollup> budget_epochs;  ///< by epoch, 0 first

  /// Canonical JSONL dump: one `fleet_rollup` line, one `policy_rollup` line
  /// per policy, one `domain_rollup` line per uncore-domain index, one
  /// `budget_rollup` line per allocation epoch (budgeted fleets only), one
  /// `node_result` line per node, all with deterministically formatted
  /// numbers -- two runs are bit-identical iff these strings match.
  [[nodiscard]] std::string to_jsonl() const;
};

/// Which tick path simulates each shard. Both produce byte-identical
/// FleetResult::to_jsonl() output; kPerNode (exp::run_policy, one SimEngine
/// per run) is the oracle, kBatch (exp::BatchRun, struct-of-arrays kernel)
/// is the throughput path.
enum class FleetEngine {
  kPerNode,
  kBatch,
};

/// Runs a validated manifest. Thread-safe progress accessors make live
/// /fleet/status reporting possible while run() executes on another thread.
class FleetRunner {
 public:
  /// Validates eagerly: throws common::ConfigError listing every manifest
  /// problem, so a daemon can reject a bad job at submit time.
  explicit FleetRunner(FleetManifest manifest);

  /// Progress gauges/counters land in `reg` ("magus_fleet_*"); per-node
  /// completion events go to `events` when non-null. Telemetry never feeds
  /// back into the simulation: results are bit-identical with or without it.
  void attach_telemetry(telemetry::MetricsRegistry& reg,
                        telemetry::EventLog* events = nullptr);

  /// Select the tick path (default: per-node). Set before run().
  void set_engine(FleetEngine engine) noexcept { engine_ = engine; }
  [[nodiscard]] FleetEngine engine() const noexcept { return engine_; }

  /// Simulate the whole fleet. Deterministic for any job count (see file
  /// header). Call at most once per runner.
  [[nodiscard]] FleetResult run();

  [[nodiscard]] const FleetManifest& manifest() const noexcept { return manifest_; }
  [[nodiscard]] std::size_t nodes_total() const noexcept { return expanded_.size(); }
  /// Live count of finished nodes; safe to read from any thread.
  [[nodiscard]] std::size_t nodes_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  /// The exact inputs both engines consume for one node; built only from
  /// (manifest seed, node index) so the two paths cannot diverge.
  struct NodeInputs;
  [[nodiscard]] NodeInputs node_inputs(std::size_t index) const;

  /// Budget pre-pass (constructor only, serial): estimate per-epoch demand
  /// for every node from its jittered phase program, water-fill the global
  /// budget epoch by epoch, and fix each node's PowerCapSchedule plus the
  /// allocated/clipped halves of the epoch accounting. Manifest-only inputs
  /// walked in node-index order, so the schedules are identical at any
  /// --jobs count and shard size.
  void compute_power_caps();

  [[nodiscard]] NodeResult run_node(std::size_t index) const;
  /// Batched equivalent of run_node over [begin, end): one BatchRun per
  /// retry round, writing the same NodeResult fields into `results`.
  void run_shard_batch(std::size_t begin, std::size_t end,
                       std::vector<NodeResult>& results) const;

  // Concurrency model (audited under -Wthread-safety, DESIGN.md §14): the
  // runner holds NO mutex of its own. `completed_` is the only field workers
  // write concurrently — a relaxed atomic progress counter (monotonic count,
  // no ordering to protect). Everything else is init-then-read:
  // manifest_/expanded_ are fixed by the constructor, engine_ and the
  // telemetry handles must be set before run() starts (set_engine /
  // attach_telemetry contracts), after which workers only read them.
  // Events emitted through events_ are serialized by EventLog's own lock.
  FleetManifest manifest_;
  std::vector<NodeSpec> expanded_;
  FleetEngine engine_ = FleetEngine::kPerNode;
  std::atomic<std::size_t> completed_{0};

  // Budget state: computed once by the constructor (init-then-read, like
  // expanded_), empty when the manifest sets no budget and no node caps.
  std::vector<core::PowerCapSchedule> caps_;      ///< per node, fleet order
  std::vector<BudgetEpochRollup> budget_epochs_;  ///< allocated/clipped halves

  telemetry::EventLog* events_ = nullptr;
  telemetry::Gauge* m_nodes_total_ = nullptr;
  telemetry::Counter* m_nodes_done_ = nullptr;
  telemetry::Gauge* m_joules_saved_ = nullptr;
  telemetry::Gauge* m_degraded_nodes_ = nullptr;
  telemetry::Gauge* m_failed_nodes_ = nullptr;
  telemetry::Gauge* m_power_budget_ = nullptr;
  telemetry::Gauge* m_power_allocated_ = nullptr;
  telemetry::Gauge* m_power_clipped_ = nullptr;
};

}  // namespace magus::fleet
