#pragma once
// Fleet-level power-budget allocation.
//
// The fleet layer's first piece of *coordinated* state: a global Watts
// budget redistributed across nodes once per epoch of simulated time.
// Allocation is water-filling with per-node floors and ceilings -- floors
// are funded first (scaled proportionally when even they do not fit), then a
// common water level rises toward each node's demand, then leftover headroom
// water-fills toward the ceilings.
//
// Determinism: everything here is computed *before* any node runs, from
// manifest-only inputs (the jittered phase programs and the preset power
// models), in node-index order, by the FleetRunner constructor -- never
// concurrently. Per-node results then depend only on (seed, manifest) as
// before, so rollups stay byte-identical at any --jobs count or shard size.
//
// Invariants (property-tested in tests/fleet/test_allocator_prop.cpp):
//   conservation  sum(alloc) <= budget (exact equality when demand-bound)
//   ceilings      alloc[i] <= ceiling[i] always
//   floors        alloc[i] >= floor[i] whenever budget >= sum(floors)
//   monotonicity  every alloc[i] is non-decreasing in the budget

#include <vector>

#include "magus/sim/system_preset.hpp"
#include "magus/wl/phase.hpp"

namespace magus::fleet {

/// One node's inputs to an epoch's allocation round.
struct NodeDemand {
  double demand_w = 0.0;   ///< estimated average draw this epoch
  double floor_w = 0.0;    ///< idle draw: allocations below this starve the node
  double ceiling_w = 0.0;  ///< peak useful draw: Watts above this are wasted
};

class PowerBudgetAllocator {
 public:
  /// Split `budget_w` across `nodes` (see file header for the algorithm and
  /// its invariants). Returns one allocation per node, in input order.
  [[nodiscard]] static std::vector<double> allocate(const std::vector<NodeDemand>& nodes,
                                                    double budget_w);
};

/// Analytic per-epoch power-demand estimate for one node: walk the (already
/// jittered) phase program and average the preset's power models -- core,
/// uncore at full frequency, DRAM, GPU -- over each `epoch_s` slice of
/// simulated time. Epochs past the program's nominal end pad with the idle
/// floor, so a node stretched beyond its estimate keeps a sane allocation.
/// `epochs` is the fleet-wide epoch count (>= the program's own span).
[[nodiscard]] std::vector<double> estimate_epoch_demand_w(const sim::SystemSpec& system,
                                                          const wl::PhaseProgram& workload,
                                                          double epoch_s,
                                                          std::size_t epochs);

/// Idle draw of a node: every component at its floor. The allocator's
/// per-node floor.
[[nodiscard]] double node_floor_w(const sim::SystemSpec& system);

/// Peak useful draw: every component flat out. The allocator's per-node
/// ceiling (a manifest power_cap_w tightens it further).
[[nodiscard]] double node_ceiling_w(const sim::SystemSpec& system);

}  // namespace magus::fleet
