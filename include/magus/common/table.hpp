#pragma once
// Plain-text and CSV table rendering for bench binaries.
//
// Every bench target prints the same rows/series the paper's table or figure
// reports; TextTable keeps the console output aligned, CsvWriter emits a
// machine-readable copy alongside.

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace magus::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  [[nodiscard]] static std::string num(double v, int precision = 2);

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& cells);
  void write_row_numeric(const std::vector<double>& cells, int precision = 6);

 private:
  struct Impl;
  Impl* impl_;
};

/// RFC-4180-ish escaping for a single CSV cell.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace magus::common
