#pragma once
// Strong-typed physical quantities.
//
// `units.hpp` documents the unit convention; this header *enforces* it. Each
// quantity is a zero-overhead wrapper around one `double` (same size, same
// codegen, trivially copyable) whose constructor is explicit, so a swapped
// `mbps`/`ghz` argument or a ratio/GHz mix-up is a compile error instead of a
// silently corrupted energy figure. Arithmetic is unit-correct: same-unit
// add/subtract, dimensionless scaling, and the few physically meaningful
// cross-unit products (W x s = J, J / s = W, J / W = s). `.value()` is the
// escape hatch back to `double` at raw boundaries (hw/ MSR codecs, trace
// buffers, telemetry gauges).
//
// Every operation maps to exactly one IEEE-754 double operation in the same
// order a bare-double expression would perform it, so migrating an API to
// quantities is bit-identical by construction (asserted end to end by
// tests/exp/test_golden_determinism.cpp).

#include <compare>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <type_traits>

#include "magus/common/error.hpp"
#include "magus/common/units.hpp"

namespace magus::common {

template <class Tag>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  explicit constexpr Quantity(double v) noexcept : v_(v) {}

  /// Escape hatch to the raw double (for hw codecs, traces, telemetry).
  [[nodiscard]] constexpr double value() const noexcept { return v_; }

  /// Unit suffix ("GHz", "MB/s", ...), for formatting and diagnostics.
  [[nodiscard]] static constexpr const char* unit() noexcept { return Tag::kUnit; }

  // Same-unit arithmetic.
  friend constexpr Quantity operator+(Quantity a, Quantity b) noexcept {
    return Quantity(a.v_ + b.v_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) noexcept {
    return Quantity(a.v_ - b.v_);
  }
  [[nodiscard]] constexpr Quantity operator-() const noexcept { return Quantity(-v_); }
  constexpr Quantity& operator+=(Quantity o) noexcept {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    v_ -= o.v_;
    return *this;
  }

  // Dimensionless scaling.
  friend constexpr Quantity operator*(Quantity a, double s) noexcept {
    return Quantity(a.v_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity a) noexcept {
    return Quantity(s * a.v_);
  }
  friend constexpr Quantity operator/(Quantity a, double s) noexcept {
    return Quantity(a.v_ / s);
  }

  /// The ratio of two same-unit quantities is dimensionless.
  friend constexpr double operator/(Quantity a, Quantity b) noexcept { return a.v_ / b.v_; }

  friend constexpr auto operator<=>(const Quantity& a, const Quantity& b) noexcept = default;

 private:
  double v_ = 0.0;
};

// Tag types carry only the unit suffix; they are never instantiated.
struct GhzTag {
  static constexpr const char* kUnit = "GHz";
};
struct MbpsTag {
  static constexpr const char* kUnit = "MB/s";
};
struct WattsTag {
  static constexpr const char* kUnit = "W";
};
struct JoulesTag {
  static constexpr const char* kUnit = "J";
};
struct SecondsTag {
  static constexpr const char* kUnit = "s";
};
struct KhzTag {
  static constexpr const char* kUnit = "kHz";
};

using Ghz = Quantity<GhzTag>;        ///< frequency (uncore/core/SM clocks)
using Mbps = Quantity<MbpsTag>;      ///< memory throughput, MB/s
using Watts = Quantity<WattsTag>;    ///< power
using Joules = Quantity<JoulesTag>;  ///< energy
using Seconds = Quantity<SecondsTag>;
using Khz = Quantity<KhzTag>;        ///< sysfs uncore attribute unit (kHz)

static_assert(sizeof(Ghz) == sizeof(double), "quantities must stay zero-overhead");
static_assert(std::is_trivially_copyable_v<Ghz>);

// Physically meaningful cross-unit operations.
[[nodiscard]] constexpr Joules operator*(Watts w, Seconds s) noexcept {
  return Joules(w.value() * s.value());
}
[[nodiscard]] constexpr Joules operator*(Seconds s, Watts w) noexcept {
  return Joules(s.value() * w.value());
}
[[nodiscard]] constexpr Watts operator/(Joules j, Seconds s) noexcept {
  return Watts(j.value() / s.value());
}
[[nodiscard]] constexpr Seconds operator/(Joules j, Watts w) noexcept {
  return Seconds(j.value() / w.value());
}

/// MSR 0x620-style uncore ratio (1 step == 100 MHz). Integral, explicit.
class UncoreRatio {
 public:
  constexpr UncoreRatio() noexcept = default;
  explicit constexpr UncoreRatio(unsigned v) noexcept : v_(v) {}

  [[nodiscard]] constexpr unsigned value() const noexcept { return v_; }
  [[nodiscard]] static constexpr const char* unit() noexcept { return "ratio"; }

  friend constexpr auto operator<=>(const UncoreRatio& a, const UncoreRatio& b) noexcept =
      default;

 private:
  unsigned v_ = 0;
};

/// Typed bridges over the `units.hpp` ratio codec.
[[nodiscard]] constexpr Ghz to_ghz(UncoreRatio r) noexcept {
  return Ghz(ratio_to_ghz(r.value()));
}
[[nodiscard]] constexpr UncoreRatio to_ratio(Ghz f) noexcept {
  return UncoreRatio(ghz_to_ratio(f.value()));
}

/// kHz <-> GHz bridge for the intel_uncore_frequency sysfs backend, which
/// reports and accepts integer kilohertz while the model speaks GHz. Each
/// direction is one rounding step; an integral kHz count survives the round
/// trip to within ~1e-8 kHz (relative error per step is 2^-52, far below the
/// 0.5 kHz needed to move an integer), so llround recovers it exactly --
/// the property the backend's write path relies on. 1e6 (not 1e-6) is the
/// exactly representable factor, so divide by it rather than multiplying by
/// its inexact reciprocal.
inline constexpr double kKhzPerGhz = 1e6;
[[nodiscard]] constexpr Ghz to_ghz(Khz k) noexcept { return Ghz(k.value() / kKhzPerGhz); }
[[nodiscard]] constexpr Khz to_khz(Ghz f) noexcept { return Khz(f.value() * kKhzPerGhz); }

/// "<shortest round-trip value> <unit>", e.g. "2.2 GHz". The value prints
/// with up to max_digits10 significant digits so parse_quantity recovers the
/// exact double.
template <class Tag>
[[nodiscard]] inline std::string to_string(Quantity<Tag> q) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g %s", q.value(), Quantity<Tag>::unit());
  return buf;
}

/// Inverse of to_string. Requires the exact unit suffix (leading whitespace
/// before it is tolerated); anything else is a ConfigError.
template <class Q>
[[nodiscard]] inline Q parse_quantity(const std::string& text) {
  const char* s = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s) {
    throw ConfigError("parse_quantity: no number in '" + text + "'");
  }
  while (*end == ' ' || *end == '\t') ++end;
  if (std::strcmp(end, Q::unit()) != 0) {
    throw ConfigError("parse_quantity: expected unit '" + std::string(Q::unit()) +
                      "' in '" + text + "'");
  }
  return Q(v);
}

namespace quantity_literals {

// clang-format off
[[nodiscard]] constexpr Ghz     operator""_ghz(long double v) noexcept  { return Ghz(static_cast<double>(v)); }
[[nodiscard]] constexpr Ghz     operator""_ghz(unsigned long long v) noexcept  { return Ghz(static_cast<double>(v)); }
[[nodiscard]] constexpr Mbps    operator""_mbps(long double v) noexcept { return Mbps(static_cast<double>(v)); }
[[nodiscard]] constexpr Mbps    operator""_mbps(unsigned long long v) noexcept { return Mbps(static_cast<double>(v)); }
[[nodiscard]] constexpr Watts   operator""_w(long double v) noexcept    { return Watts(static_cast<double>(v)); }
[[nodiscard]] constexpr Watts   operator""_w(unsigned long long v) noexcept    { return Watts(static_cast<double>(v)); }
[[nodiscard]] constexpr Joules  operator""_j(long double v) noexcept    { return Joules(static_cast<double>(v)); }
[[nodiscard]] constexpr Joules  operator""_j(unsigned long long v) noexcept    { return Joules(static_cast<double>(v)); }
[[nodiscard]] constexpr Seconds operator""_s(long double v) noexcept    { return Seconds(static_cast<double>(v)); }
[[nodiscard]] constexpr Seconds operator""_s(unsigned long long v) noexcept    { return Seconds(static_cast<double>(v)); }
[[nodiscard]] constexpr Khz     operator""_khz(long double v) noexcept  { return Khz(static_cast<double>(v)); }
[[nodiscard]] constexpr Khz     operator""_khz(unsigned long long v) noexcept  { return Khz(static_cast<double>(v)); }
// clang-format on

}  // namespace quantity_literals

}  // namespace magus::common
