#pragma once
// Deterministic, fast RNG used for workload jitter and the repetition
// protocol. SplitMix64 keeps experiments bit-reproducible across platforms
// (std::mt19937 distributions are not guaranteed identical across stdlibs).

#include <cmath>
#include <cstdint>

namespace magus::common {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    return n == 0 ? 0 : next_u64() % n;
  }

  /// Standard normal via Box-Muller (one value per call; simple and stateless).
  double normal() noexcept {
    double u1 = uniform();
    const double u2 = uniform();
    if (u1 <= 1e-300) u1 = 1e-300;
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Multiplicative jitter: 1 + N(0, rel) clamped to [1-3rel, 1+3rel].
  double jitter(double rel) noexcept {
    if (rel <= 0.0) return 1.0;
    double j = 1.0 + normal(0.0, rel);
    const double lo = 1.0 - 3.0 * rel;
    const double hi = 1.0 + 3.0 * rel;
    if (j < lo) j = lo;
    if (j > hi) j = hi;
    return j;
  }

  /// Derive an independent child stream (for per-repetition seeding).
  /// Does not advance this Rng's state, so forking is order-independent and
  /// safe to do concurrently from several threads.
  [[nodiscard]] Rng fork(std::uint64_t stream) const noexcept {
    Rng child(state_ ^ (0xA24BAED4963EE407ull + stream * 0x9FB21C651E98DF25ull));
    child.next_u64();
    return child;
  }

 private:
  std::uint64_t state_;
};

}  // namespace magus::common
