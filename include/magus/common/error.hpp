#pragma once
// Error taxonomy for the hardware layer.
//
// Backends that talk to real devices (/dev/cpu/*/msr, powercap sysfs) can
// fail at runtime for reasons the caller must distinguish: the capability is
// simply absent (fall back / skip), or present but misbehaving (hard error).

#include <stdexcept>
#include <string>

namespace magus::common {

/// Base class for all MAGUS errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The requested hardware capability does not exist on this machine
/// (no msr module, no powercap, no GPU...). Callers typically probe first
/// and treat this as "skip", not "fail".
class CapabilityError : public Error {
 public:
  explicit CapabilityError(const std::string& what) : Error(what) {}
};

/// The capability exists but an access failed (EPERM, short read, ...).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// Invalid configuration supplied by the user.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

}  // namespace magus::common
