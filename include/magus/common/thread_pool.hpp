#pragma once
// Fixed-size worker pool behind the experiment layer's fan-out.
//
// Every repetition / policy / sweep combination is an isolated deterministic
// simulation (own NodeModel, own seeded Rng), so the experiment protocols are
// embarrassingly parallel. The contract that keeps results bit-identical to
// the serial loops:
//
//   * callers pre-size their result containers and write slot [i] from task i
//     (never by completion order), and
//   * any floating-point aggregation happens serially, in index order, after
//     the fan-out completes.
//
// `parallel_for_each` is a work-sharing construct: the calling thread
// participates in executing indices alongside the pool workers. That makes
// nested fan-outs (evaluate_app -> run_repeated) deadlock-free — a worker
// that starts a nested fan-out simply chews through the inner indices itself
// if no other worker is free.
//
// Pool sizing: `default_pool()` uses `set_default_jobs()` if called, else the
// MAGUS_JOBS environment variable, else std::thread::hardware_concurrency().

#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>

namespace magus::telemetry {
class MetricsRegistry;
}

namespace magus::common {

class ThreadPool {
 public:
  /// Spawns max(1, threads) workers. A 1-thread pool still owns one worker
  /// (so `submit` works), but `parallel_for_each` degenerates to a plain
  /// serial loop on the calling thread.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  [[nodiscard]] std::size_t size() const noexcept;

  /// Enqueue a nullary callable; the future carries its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Register pool instruments on `reg` (magus_pool_workers,
  /// magus_pool_queue_depth, magus_pool_tasks_total,
  /// magus_pool_task_latency_seconds) and start reporting into them. Safe to
  /// call at any time, including while tasks are in flight. A disabled
  /// registry (e.g. telemetry::null_registry()) detaches the instruments;
  /// once that call returns no worker touches the previous registry, so a
  /// registry shorter-lived than the pool MUST be detached this way before
  /// it is destroyed.
  void attach_telemetry(telemetry::MetricsRegistry& reg);

  /// Run fn(0), ..., fn(count - 1) across the workers *and* the calling
  /// thread; returns when all indices have finished. The first exception
  /// thrown by any fn(i) is rethrown here (remaining indices are skipped).
  /// With size() == 1 the loop runs serially on the calling thread.
  void parallel_for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void enqueue(std::function<void()> task);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Worker count `default_pool()` would use right now: the
/// `set_default_jobs()` override if set, else MAGUS_JOBS (>= 1), else
/// hardware_concurrency() (>= 1).
[[nodiscard]] std::size_t default_job_count() noexcept;

/// Process-wide shared pool, created lazily with `default_job_count()`
/// workers. The reference stays valid for the life of the process unless
/// `set_default_jobs` resizes it.
[[nodiscard]] ThreadPool& default_pool();

/// Override the default pool's worker count (0 = back to auto: MAGUS_JOBS or
/// hardware_concurrency). If the pool already exists at a different size it
/// is drained and rebuilt — call this between experiment batches (e.g. from
/// CLI flag parsing), not while fan-outs are in flight.
void set_default_jobs(std::size_t jobs);

}  // namespace magus::common
