#pragma once
// Compile-time concurrency auditing: Clang thread-safety capability
// annotations (DESIGN.md §14).
//
// Every mutex-guarded or lock-free shared-state site in the codebase is
// annotated with the macros below, and CI compiles the whole tree under
// Clang with `-Wthread-safety -Werror=thread-safety`, so "forgot to take
// the lock", "took the locks in the wrong order", and "called a
// lock-requiring helper without holding it" are compile errors, not
// TSan-run-dependent findings. On non-Clang toolchains (the default GCC
// build) every macro expands to nothing and `AnnotatedMutex`/`LockGuard`/
// `UniqueLock`/`CondVar` reduce to their std counterparts.
//
// Vocabulary (thin wrappers over Clang's attributes — see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//
//   MAGUS_GUARDED_BY(mu)      field may only be read/written holding `mu`
//   MAGUS_PT_GUARDED_BY(mu)   pointee guarded by `mu` (pointer itself free)
//   MAGUS_REQUIRES(mu)        function must be called with `mu` held
//   MAGUS_ACQUIRE/RELEASE     function acquires/releases `mu`
//   MAGUS_EXCLUDES(mu)        function must be called with `mu` NOT held
//   MAGUS_ACQUIRED_BEFORE     lock-ordering hierarchy edge (checked under
//                             -Wthread-safety-beta; always parsed, so the
//                             hierarchy is at least machine-readable)
//   MAGUS_RETURN_CAPABILITY   accessor returns (an alias of) a capability
//
// The hot-path role. `hot_path_role` is a phantom capability representing
// "we are on a bounded-latency, lock-free path" (the SoA batch tick and the
// runtime's sample→decide→write core). Entering such a region is
// `HotPathSection section;`; functions that may only run there are marked
// MAGUS_LOCK_FREE (= MAGUS_REQUIRES(hot_path_role)). Every
// AnnotatedMutex::lock / LockGuard / UniqueLock declares
// MAGUS_EXCLUDES(hot_path_role), so taking ANY annotated lock while a
// HotPathSection is active is a compile error — the compiler-checked twin
// of magus_lint's marker-comment hot-path rule. (The check is
// intraprocedural, like all of Clang's analysis: it catches locking done
// directly inside an annotated scope; calls into unannotated helpers are
// covered by the lint rule instead.)

#include <condition_variable>
#include <mutex>  // magus:raw-mutex-ok -- the wrapper implementation itself

#if defined(__clang__) && !defined(MAGUS_NO_THREAD_SAFETY_ANNOTATIONS)
#define MAGUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define MAGUS_THREAD_ANNOTATION_(x)  // no-op on GCC/MSVC
#endif

#define MAGUS_CAPABILITY(x) MAGUS_THREAD_ANNOTATION_(capability(x))
#define MAGUS_SCOPED_CAPABILITY MAGUS_THREAD_ANNOTATION_(scoped_lockable)
#define MAGUS_GUARDED_BY(x) MAGUS_THREAD_ANNOTATION_(guarded_by(x))
#define MAGUS_PT_GUARDED_BY(x) MAGUS_THREAD_ANNOTATION_(pt_guarded_by(x))
#define MAGUS_ACQUIRED_BEFORE(...) MAGUS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define MAGUS_ACQUIRED_AFTER(...) MAGUS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define MAGUS_REQUIRES(...) MAGUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define MAGUS_REQUIRES_SHARED(...) \
  MAGUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define MAGUS_ACQUIRE(...) MAGUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define MAGUS_RELEASE(...) MAGUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define MAGUS_TRY_ACQUIRE(...) MAGUS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define MAGUS_EXCLUDES(...) MAGUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define MAGUS_ASSERT_CAPABILITY(x) MAGUS_THREAD_ANNOTATION_(assert_capability(x))
#define MAGUS_RETURN_CAPABILITY(x) MAGUS_THREAD_ANNOTATION_(lock_returned(x))
#define MAGUS_NO_THREAD_SAFETY_ANALYSIS MAGUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace magus::common {

/// Phantom capability for the lock-free hot paths (no runtime state; the
/// "acquisition" exists only in the analysis). See MAGUS_LOCK_FREE below.
class MAGUS_CAPABILITY("role") HotPathRole {};

/// The process-wide hot-path role every MAGUS_LOCK_FREE function requires.
inline HotPathRole hot_path_role;

/// Marks a function as hot-path-only: callers must be inside a
/// HotPathSection, and the function body cannot take any AnnotatedMutex
/// (their lock operations exclude `hot_path_role`).
#define MAGUS_LOCK_FREE MAGUS_REQUIRES(::magus::common::hot_path_role)

/// std::mutex wrapped as a Clang capability. Always use this (never a bare
/// std::mutex — enforced by magus_lint's raw-mutex rule) so GUARDED_BY /
/// REQUIRES relationships are checkable.
class MAGUS_CAPABILITY("mutex") AnnotatedMutex {
 public:
  AnnotatedMutex() = default;
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  // Bodies are excluded from analysis: the acquisition happens inside the
  // unannotated std::mutex, which the analysis cannot see. Call sites are
  // still fully checked through the attributes.
  void lock() MAGUS_ACQUIRE() MAGUS_EXCLUDES(hot_path_role)
      MAGUS_NO_THREAD_SAFETY_ANALYSIS {
    m_.lock();
  }
  void unlock() MAGUS_RELEASE() MAGUS_NO_THREAD_SAFETY_ANALYSIS { m_.unlock(); }
  [[nodiscard]] bool try_lock() MAGUS_TRY_ACQUIRE(true) MAGUS_EXCLUDES(hot_path_role)
      MAGUS_NO_THREAD_SAFETY_ANALYSIS {
    return m_.try_lock();
  }

  /// The raw mutex, for CondVar's wait plumbing ONLY — locking through it
  /// bypasses the analysis.
  [[nodiscard]] std::mutex& native_handle() noexcept { return m_; }

 private:
  std::mutex m_;  // magus:raw-mutex-ok -- the capability wraps this
};

/// RAII lock for AnnotatedMutex (std::lock_guard equivalent). The pattern —
/// acquire the constructor parameter, release the stored reference — is the
/// one Clang's analysis is specified against.
class MAGUS_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(AnnotatedMutex& mu) MAGUS_ACQUIRE(mu) MAGUS_EXCLUDES(hot_path_role)
      : mu_(mu) {
    mu.lock();
  }
  ~LockGuard() MAGUS_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  AnnotatedMutex& mu_;
};

/// RAII lock that a CondVar can wait on (std::unique_lock equivalent; held
/// for its whole scope — there is deliberately no unlock/release API, which
/// keeps the analysis exact).
class MAGUS_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(AnnotatedMutex& mu) MAGUS_ACQUIRE(mu) MAGUS_EXCLUDES(hot_path_role)
      : mu_(mu) {
    mu.lock();
  }
  ~UniqueLock() MAGUS_RELEASE() { mu_.unlock(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The capability this lock holds (CondVar plumbing).
  [[nodiscard]] AnnotatedMutex& mutex() const noexcept { return mu_; }

 private:
  AnnotatedMutex& mu_;
};

/// Condition variable over AnnotatedMutex. Only the plain wait is offered:
/// predicate-lambda waits would be analyzed with an empty lock set (Clang
/// checks lambda bodies as separate functions), so callers spell the loop
/// themselves —
///
///   UniqueLock lock(mutex_);
///   while (!condition) cv_.wait(lock);   // condition checked under the lock
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, block, reacquire before returning. Spurious
  /// wakeups happen; always call in a while-loop on the guarded condition.
  void wait(UniqueLock& lock) {
    // Adopt the already-held native mutex for the std wait protocol, then
    // release the adoption so UniqueLock's destructor stays the only
    // unlocker. Net effect on the caller's lock set: none — which is
    // exactly what the (absent) annotations say.
    std::unique_lock<std::mutex> native(lock.mutex().native_handle(),  // magus:raw-mutex-ok
                                        std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

 private:
  std::condition_variable cv_;  // magus:raw-mutex-ok -- wrapped by CondVar
};

/// Scoped entry into a lock-free hot-path region: while alive, constructing
/// any LockGuard/UniqueLock (or calling AnnotatedMutex::lock) is a compile
/// error, and MAGUS_LOCK_FREE functions become callable. Purely an analysis
/// construct — compiles to nothing.
class MAGUS_SCOPED_CAPABILITY HotPathSection {
 public:
  HotPathSection() MAGUS_ACQUIRE(hot_path_role) MAGUS_NO_THREAD_SAFETY_ANALYSIS {}
  ~HotPathSection() MAGUS_RELEASE() MAGUS_NO_THREAD_SAFETY_ANALYSIS {}

  HotPathSection(const HotPathSection&) = delete;
  HotPathSection& operator=(const HotPathSection&) = delete;
};

}  // namespace magus::common
