#pragma once
// FixedWindow<T>: a fixed-capacity FIFO sliding window.
//
// This is the data structure behind the paper's `mem_throughput_ls` and
// `uncore_tune_ls` queues (Algorithm 3): pushing into a full window evicts
// the oldest element, so the window always holds the most recent N samples
// once warmed up.

#include <cassert>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace magus::common {

template <typename T>
class FixedWindow {
 public:
  explicit FixedWindow(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("FixedWindow capacity must be > 0");
    data_.reserve(capacity_);
  }

  /// Construct pre-filled with `capacity` copies of `fill` (the paper seeds
  /// `uncore_tune_ls` with 10 zeros before MDFS engages).
  FixedWindow(std::size_t capacity, const T& fill) : FixedWindow(capacity) {
    data_.assign(capacity_, fill);
  }

  /// Append a sample; evicts the oldest sample when full.
  void push(const T& v) {
    if (data_.size() == capacity_) {
      data_.erase(data_.begin());
    }
    data_.push_back(v);
  }

  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool full() const noexcept { return data_.size() == capacity_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] const T& oldest() const {
    if (data_.empty()) throw std::out_of_range("FixedWindow::oldest on empty window");
    return data_.front();
  }
  [[nodiscard]] const T& newest() const {
    if (data_.empty()) throw std::out_of_range("FixedWindow::newest on empty window");
    return data_.back();
  }

  /// Element access, index 0 == oldest.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  [[nodiscard]] T sum() const { return std::accumulate(data_.begin(), data_.end(), T{}); }

  [[nodiscard]] double mean() const {
    if (data_.empty()) return 0.0;
    return static_cast<double>(sum()) / static_cast<double>(data_.size());
  }

  void clear() noexcept { data_.clear(); }

  /// Reset to `capacity` copies of `fill`.
  void fill(const T& v) { data_.assign(capacity_, v); }

  [[nodiscard]] auto begin() const noexcept { return data_.begin(); }
  [[nodiscard]] auto end() const noexcept { return data_.end(); }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
};

}  // namespace magus::common
