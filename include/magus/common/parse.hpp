#pragma once
// Strict string -> value parsers for CLI flag values. The std::sto* family
// accepts trailing garbage and throws bare std::invalid_argument; these
// helpers reject both and throw ConfigError naming the offending token.

#include <string>
#include <vector>

#include "magus/common/error.hpp"

namespace magus::common {

/// Parse one base-10 integer, rejecting empty input and trailing characters.
inline int parse_int(const std::string& tok) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) {
      throw ConfigError("trailing characters in integer '" + tok + "'");
    }
    return v;
  } catch (const ConfigError&) {
    throw;
  } catch (const std::exception&) {
    throw ConfigError("invalid integer '" + tok + "'");
  }
}

/// Parse a comma-separated integer list ("0,40"). Empty tokens ("0,,1",
/// trailing comma) and non-numeric tokens are ConfigErrors.
inline std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t comma = s.find(',', start);
    const std::string tok =
        s.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok.empty()) {
      throw ConfigError("empty token in integer list '" + s + "'");
    }
    out.push_back(parse_int(tok));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace magus::common
