#pragma once
// Descriptive statistics and the repetition protocol's outlier filter.
//
// The paper repeats every experiment >= 5 times, removes outliers, and
// averages the rest (section 6). `mean_without_outliers` implements that with
// a standard 1.5*IQR fence.

#include <cstddef>
#include <span>
#include <vector>

namespace magus::common {

/// Streaming mean/variance/min/max (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void reset() noexcept { *this = RunningStats{}; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Linear-interpolated percentile, p in [0, 100]. Empty input -> 0.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double median(std::span<const double> xs);

/// Values within [Q1 - k*IQR, Q3 + k*IQR]; k defaults to the Tukey fence 1.5.
[[nodiscard]] std::vector<double> iqr_filter(std::span<const double> xs, double k = 1.5);

/// Mean after IQR outlier removal -- the paper's repetition estimator.
[[nodiscard]] double mean_without_outliers(std::span<const double> xs, double k = 1.5);

/// Pearson correlation; 0 if either side is degenerate.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace magus::common
