#pragma once
// Minimal leveled logger. The runtime is meant to run as a long-lived
// background daemon (the paper's deployment model), so logging must be
// cheap when disabled and line-buffered when enabled.

#include <sstream>
#include <string>

namespace magus::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped without formatting.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emit a message (thread-safe, single write to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace magus::common
