#pragma once
// Contract macros for the MDFS / controller / simulator boundaries.
//
//   MAGUS_EXPECT(cond)     precondition  (caller handed us garbage)
//   MAGUS_ENSURE(cond)     postcondition (we computed garbage)
//   MAGUS_INVARIANT(cond)  mid-function / loop invariant
//
// These guard *programming* errors -- an uncore target escaping the ladder,
// negative throughput, simulated time running backwards -- not user input;
// user-supplied configuration keeps throwing ConfigError from validate().
//
// The checking mode is chosen at configure time via the MAGUS_CONTRACTS
// CMake option (default `throw`):
//   throw  (MAGUS_CONTRACTS_MODE=2)  violation throws ContractViolation
//   abort  (MAGUS_CONTRACTS_MODE=1)  violation prints to stderr and aborts
//   off    (MAGUS_CONTRACTS_MODE=0)  checks compile to nothing

#include <cstdio>
#include <cstdlib>
#include <string>

#include "magus/common/error.hpp"

#ifndef MAGUS_CONTRACTS_MODE
#define MAGUS_CONTRACTS_MODE 2
#endif

namespace magus::common {

/// A contract (EXPECT / ENSURE / INVARIANT) was violated: a programming
/// error, distinct from ConfigError (bad user input).
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_failed(const char* kind, const char* cond,
                                         const char* file, int line) {
#if MAGUS_CONTRACTS_MODE == 1
  std::fprintf(stderr, "magus: %s violated: %s (%s:%d)\n", kind, cond, file, line);
  std::abort();
#else
  throw ContractViolation(std::string(kind) + " violated: " + cond + " (" + file + ":" +
                          std::to_string(line) + ")");
#endif
}

}  // namespace detail
}  // namespace magus::common

#if MAGUS_CONTRACTS_MODE == 0
#define MAGUS_CONTRACT_CHECK_(kind, cond) ((void)0)
#else
#define MAGUS_CONTRACT_CHECK_(kind, cond) \
  ((cond) ? (void)0                       \
          : ::magus::common::detail::contract_failed(kind, #cond, __FILE__, __LINE__))
#endif

#define MAGUS_EXPECT(cond) MAGUS_CONTRACT_CHECK_("precondition", cond)
#define MAGUS_ENSURE(cond) MAGUS_CONTRACT_CHECK_("postcondition", cond)
#define MAGUS_INVARIANT(cond) MAGUS_CONTRACT_CHECK_("invariant", cond)
