#pragma once
// Physical-unit helpers used throughout MAGUS.
//
// All quantities are carried as `double` in canonical SI-ish units:
//   time        seconds
//   frequency   GHz   (uncore/core/SM clocks are naturally expressed in GHz)
//   power       watts
//   energy      joules
//   throughput  MB/s  (the paper's thresholds -- inc 200 / dec 500 -- are
//                      expressed against throughput in MB/s, so MB/s is the
//                      canonical unit for memory traffic)
//
// The named functions below exist so call sites read like the paper text
// instead of carrying bare magic constants around.

namespace magus::common {

/// Uncore ratio granularity on Intel: 1 ratio step == 100 MHz.
inline constexpr double kGHzPerUncoreRatio = 0.1;

/// Exact inverse of kGHzPerUncoreRatio. 10.0 is exactly representable while
/// 0.1 is not, so `ghz * 10.0` is correctly rounded where `ghz / 0.1`
/// accumulates a second rounding error (0.05 / 0.1 == 0.4999...).
inline constexpr double kUncoreRatiosPerGHz = 10.0;

/// Largest ratio the MSR 0x620 7-bit MAX_RATIO field can hold (12.7 GHz) --
/// the saturation point for out-of-range conversion requests.
inline constexpr unsigned kMaxEncodableUncoreRatio = 0x7Fu;

/// Convert an MSR 0x620-style ratio (100 MHz units) to GHz.
[[nodiscard]] constexpr double ratio_to_ghz(unsigned ratio) noexcept {
  return static_cast<double>(ratio) * kGHzPerUncoreRatio;
}

/// Convert GHz to the nearest uncore ratio (100 MHz units), rounding
/// half-up on the *ratio* axis. Negative (and NaN) inputs map to 0 before
/// any arithmetic; inputs beyond the encodable field saturate. The old
/// `unsigned(ghz / 0.1 + 0.5)` both divided lossily (0.15 / 0.1 lands below
/// 1.5, misrounding the 1/2 boundary down) and double-rounded (+0.5 can
/// carry r just below .5 across it).
[[nodiscard]] constexpr unsigned ghz_to_ratio(double ghz) noexcept {
  if (!(ghz > 0.0)) return 0u;  // also catches NaN
  const double r = ghz * kUncoreRatiosPerGHz;
  if (r >= static_cast<double>(kMaxEncodableUncoreRatio)) return kMaxEncodableUncoreRatio;
  const auto whole = static_cast<unsigned>(r);  // r >= 0: truncation == floor
  const double frac = r - static_cast<double>(whole);
  return frac >= 0.5 ? whole + 1u : whole;
}

[[nodiscard]] constexpr double mbps_to_gbps(double mbps) noexcept { return mbps / 1000.0; }
[[nodiscard]] constexpr double gbps_to_mbps(double gbps) noexcept { return gbps * 1000.0; }

[[nodiscard]] constexpr double joules(double watts, double seconds) noexcept {
  return watts * seconds;
}

[[nodiscard]] constexpr double watt_hours(double j) noexcept { return j / 3600.0; }

[[nodiscard]] constexpr double percent(double part, double whole) noexcept {
  return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

/// Relative change of `candidate` versus `reference`, in percent.
/// Positive means candidate is larger.
[[nodiscard]] constexpr double percent_change(double candidate, double reference) noexcept {
  return reference == 0.0 ? 0.0 : 100.0 * (candidate - reference) / reference;
}

}  // namespace magus::common
