#pragma once
// Physical-unit helpers used throughout MAGUS.
//
// All quantities are carried as `double` in canonical SI-ish units:
//   time        seconds
//   frequency   GHz   (uncore/core/SM clocks are naturally expressed in GHz)
//   power       watts
//   energy      joules
//   throughput  MB/s  (the paper's thresholds -- inc 200 / dec 500 -- are
//                      expressed against throughput in MB/s, so MB/s is the
//                      canonical unit for memory traffic)
//
// The named functions below exist so call sites read like the paper text
// instead of carrying bare magic constants around.

namespace magus::common {

/// Uncore ratio granularity on Intel: 1 ratio step == 100 MHz.
inline constexpr double kGHzPerUncoreRatio = 0.1;

/// Convert an MSR 0x620-style ratio (100 MHz units) to GHz.
[[nodiscard]] constexpr double ratio_to_ghz(unsigned ratio) noexcept {
  return static_cast<double>(ratio) * kGHzPerUncoreRatio;
}

/// Convert GHz to the nearest uncore ratio (100 MHz units).
[[nodiscard]] constexpr unsigned ghz_to_ratio(double ghz) noexcept {
  const double r = ghz / kGHzPerUncoreRatio;
  return r <= 0.0 ? 0u : static_cast<unsigned>(r + 0.5);
}

[[nodiscard]] constexpr double mbps_to_gbps(double mbps) noexcept { return mbps / 1000.0; }
[[nodiscard]] constexpr double gbps_to_mbps(double gbps) noexcept { return gbps * 1000.0; }

[[nodiscard]] constexpr double joules(double watts, double seconds) noexcept {
  return watts * seconds;
}

[[nodiscard]] constexpr double watt_hours(double j) noexcept { return j / 3600.0; }

[[nodiscard]] constexpr double percent(double part, double whole) noexcept {
  return whole == 0.0 ? 0.0 : 100.0 * part / whole;
}

/// Relative change of `candidate` versus `reference`, in percent.
/// Positive means candidate is larger.
[[nodiscard]] constexpr double percent_change(double candidate, double reference) noexcept {
  return reference == 0.0 ? 0.0 : 100.0 * (candidate - reference) / reference;
}

}  // namespace magus::common
