file(REMOVE_RECURSE
  "CMakeFiles/magus-cli.dir/magus_cli.cpp.o"
  "CMakeFiles/magus-cli.dir/magus_cli.cpp.o.d"
  "magus-cli"
  "magus-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
