# Empty compiler generated dependencies file for magus-cli.
# This may be replaced when dependencies are built.
