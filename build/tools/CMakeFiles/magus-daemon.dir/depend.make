# Empty dependencies file for magus-daemon.
# This may be replaced when dependencies are built.
