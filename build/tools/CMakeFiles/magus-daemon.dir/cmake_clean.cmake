file(REMOVE_RECURSE
  "CMakeFiles/magus-daemon.dir/magus_daemon.cpp.o"
  "CMakeFiles/magus-daemon.dir/magus_daemon.cpp.o.d"
  "magus-daemon"
  "magus-daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus-daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
