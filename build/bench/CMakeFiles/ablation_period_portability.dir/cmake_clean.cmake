file(REMOVE_RECURSE
  "CMakeFiles/ablation_period_portability.dir/ablation_period_portability.cpp.o"
  "CMakeFiles/ablation_period_portability.dir/ablation_period_portability.cpp.o.d"
  "ablation_period_portability"
  "ablation_period_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_period_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
