# Empty dependencies file for ablation_period_portability.
# This may be replaced when dependencies are built.
