file(REMOVE_RECURSE
  "CMakeFiles/fig04a_end_to_end_a100.dir/fig04a_end_to_end_a100.cpp.o"
  "CMakeFiles/fig04a_end_to_end_a100.dir/fig04a_end_to_end_a100.cpp.o.d"
  "fig04a_end_to_end_a100"
  "fig04a_end_to_end_a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04a_end_to_end_a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
