# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig04a_end_to_end_a100.
