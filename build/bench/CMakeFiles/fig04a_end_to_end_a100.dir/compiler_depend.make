# Empty compiler generated dependencies file for fig04a_end_to_end_a100.
# This may be replaced when dependencies are built.
