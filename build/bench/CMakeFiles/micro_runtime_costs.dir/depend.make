# Empty dependencies file for micro_runtime_costs.
# This may be replaced when dependencies are built.
