file(REMOVE_RECURSE
  "CMakeFiles/micro_runtime_costs.dir/micro_runtime_costs.cpp.o"
  "CMakeFiles/micro_runtime_costs.dir/micro_runtime_costs.cpp.o.d"
  "micro_runtime_costs"
  "micro_runtime_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_runtime_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
