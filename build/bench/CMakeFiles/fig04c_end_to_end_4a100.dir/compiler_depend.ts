# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig04c_end_to_end_4a100.
