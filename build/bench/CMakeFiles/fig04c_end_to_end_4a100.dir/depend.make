# Empty dependencies file for fig04c_end_to_end_4a100.
# This may be replaced when dependencies are built.
