file(REMOVE_RECURSE
  "CMakeFiles/fig04c_end_to_end_4a100.dir/fig04c_end_to_end_4a100.cpp.o"
  "CMakeFiles/fig04c_end_to_end_4a100.dir/fig04c_end_to_end_4a100.cpp.o.d"
  "fig04c_end_to_end_4a100"
  "fig04c_end_to_end_4a100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04c_end_to_end_4a100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
