file(REMOVE_RECURSE
  "CMakeFiles/fig05_srad_throughput.dir/fig05_srad_throughput.cpp.o"
  "CMakeFiles/fig05_srad_throughput.dir/fig05_srad_throughput.cpp.o.d"
  "fig05_srad_throughput"
  "fig05_srad_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_srad_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
