# Empty dependencies file for fig05_srad_throughput.
# This may be replaced when dependencies are built.
