
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig06_srad_uncore_timeline.cpp" "bench/CMakeFiles/fig06_srad_uncore_timeline.dir/fig06_srad_uncore_timeline.cpp.o" "gcc" "bench/CMakeFiles/fig06_srad_uncore_timeline.dir/fig06_srad_uncore_timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/magus_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/magus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/magus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/magus_wl.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/magus_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/magus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/magus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/magus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
