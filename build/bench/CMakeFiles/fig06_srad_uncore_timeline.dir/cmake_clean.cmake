file(REMOVE_RECURSE
  "CMakeFiles/fig06_srad_uncore_timeline.dir/fig06_srad_uncore_timeline.cpp.o"
  "CMakeFiles/fig06_srad_uncore_timeline.dir/fig06_srad_uncore_timeline.cpp.o.d"
  "fig06_srad_uncore_timeline"
  "fig06_srad_uncore_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_srad_uncore_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
