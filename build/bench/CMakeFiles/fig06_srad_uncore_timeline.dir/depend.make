# Empty dependencies file for fig06_srad_uncore_timeline.
# This may be replaced when dependencies are built.
