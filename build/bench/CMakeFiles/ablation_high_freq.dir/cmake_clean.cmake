file(REMOVE_RECURSE
  "CMakeFiles/ablation_high_freq.dir/ablation_high_freq.cpp.o"
  "CMakeFiles/ablation_high_freq.dir/ablation_high_freq.cpp.o.d"
  "ablation_high_freq"
  "ablation_high_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_high_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
