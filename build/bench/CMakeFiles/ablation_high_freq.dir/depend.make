# Empty dependencies file for ablation_high_freq.
# This may be replaced when dependencies are built.
