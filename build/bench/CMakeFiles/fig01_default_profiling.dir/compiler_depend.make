# Empty compiler generated dependencies file for fig01_default_profiling.
# This may be replaced when dependencies are built.
