file(REMOVE_RECURSE
  "CMakeFiles/fig01_default_profiling.dir/fig01_default_profiling.cpp.o"
  "CMakeFiles/fig01_default_profiling.dir/fig01_default_profiling.cpp.o.d"
  "fig01_default_profiling"
  "fig01_default_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_default_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
