file(REMOVE_RECURSE
  "CMakeFiles/table1_jaccard.dir/table1_jaccard.cpp.o"
  "CMakeFiles/table1_jaccard.dir/table1_jaccard.cpp.o.d"
  "table1_jaccard"
  "table1_jaccard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_jaccard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
