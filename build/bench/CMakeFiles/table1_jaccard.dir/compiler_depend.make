# Empty compiler generated dependencies file for table1_jaccard.
# This may be replaced when dependencies are built.
