# Empty dependencies file for fig04b_end_to_end_max1550.
# This may be replaced when dependencies are built.
