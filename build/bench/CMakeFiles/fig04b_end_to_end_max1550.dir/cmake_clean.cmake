file(REMOVE_RECURSE
  "CMakeFiles/fig04b_end_to_end_max1550.dir/fig04b_end_to_end_max1550.cpp.o"
  "CMakeFiles/fig04b_end_to_end_max1550.dir/fig04b_end_to_end_max1550.cpp.o.d"
  "fig04b_end_to_end_max1550"
  "fig04b_end_to_end_max1550.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04b_end_to_end_max1550.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
