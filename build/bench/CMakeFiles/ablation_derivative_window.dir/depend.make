# Empty dependencies file for ablation_derivative_window.
# This may be replaced when dependencies are built.
