file(REMOVE_RECURSE
  "CMakeFiles/ablation_derivative_window.dir/ablation_derivative_window.cpp.o"
  "CMakeFiles/ablation_derivative_window.dir/ablation_derivative_window.cpp.o.d"
  "ablation_derivative_window"
  "ablation_derivative_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_derivative_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
