file(REMOVE_RECURSE
  "CMakeFiles/fig07_sensitivity_pareto.dir/fig07_sensitivity_pareto.cpp.o"
  "CMakeFiles/fig07_sensitivity_pareto.dir/fig07_sensitivity_pareto.cpp.o.d"
  "fig07_sensitivity_pareto"
  "fig07_sensitivity_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_sensitivity_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
