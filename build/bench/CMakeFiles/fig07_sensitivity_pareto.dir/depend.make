# Empty dependencies file for fig07_sensitivity_pareto.
# This may be replaced when dependencies are built.
