file(REMOVE_RECURSE
  "CMakeFiles/fig02_static_uncore_power.dir/fig02_static_uncore_power.cpp.o"
  "CMakeFiles/fig02_static_uncore_power.dir/fig02_static_uncore_power.cpp.o.d"
  "fig02_static_uncore_power"
  "fig02_static_uncore_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_static_uncore_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
