# Empty compiler generated dependencies file for fig02_static_uncore_power.
# This may be replaced when dependencies are built.
