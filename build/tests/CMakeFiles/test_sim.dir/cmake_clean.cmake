file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_backends.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_backends.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_core_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_core_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_engine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_firmware_governor.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_firmware_governor.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_gpu_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_gpu_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_memory_system.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_memory_system.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_node.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_node.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_system_preset.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_system_preset.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_uncore_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_uncore_model.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
