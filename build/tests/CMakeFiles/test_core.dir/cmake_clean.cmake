file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_config.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_high_freq.cpp.o"
  "CMakeFiles/test_core.dir/core/test_high_freq.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_mdfs.cpp.o"
  "CMakeFiles/test_core.dir/core/test_mdfs.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_predictor.cpp.o"
  "CMakeFiles/test_core.dir/core/test_predictor.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o"
  "CMakeFiles/test_core.dir/core/test_runtime.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
