# Empty compiler generated dependencies file for test_wl.
# This may be replaced when dependencies are built.
