file(REMOVE_RECURSE
  "CMakeFiles/test_wl.dir/wl/test_catalog.cpp.o"
  "CMakeFiles/test_wl.dir/wl/test_catalog.cpp.o.d"
  "CMakeFiles/test_wl.dir/wl/test_io.cpp.o"
  "CMakeFiles/test_wl.dir/wl/test_io.cpp.o.d"
  "CMakeFiles/test_wl.dir/wl/test_jitter.cpp.o"
  "CMakeFiles/test_wl.dir/wl/test_jitter.cpp.o.d"
  "CMakeFiles/test_wl.dir/wl/test_patterns.cpp.o"
  "CMakeFiles/test_wl.dir/wl/test_patterns.cpp.o.d"
  "CMakeFiles/test_wl.dir/wl/test_phase.cpp.o"
  "CMakeFiles/test_wl.dir/wl/test_phase.cpp.o.d"
  "test_wl"
  "test_wl.pdb"
  "test_wl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
