file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/exp/test_evaluation.cpp.o"
  "CMakeFiles/test_exp.dir/exp/test_evaluation.cpp.o.d"
  "CMakeFiles/test_exp.dir/exp/test_experiment.cpp.o"
  "CMakeFiles/test_exp.dir/exp/test_experiment.cpp.o.d"
  "CMakeFiles/test_exp.dir/exp/test_metrics.cpp.o"
  "CMakeFiles/test_exp.dir/exp/test_metrics.cpp.o.d"
  "CMakeFiles/test_exp.dir/exp/test_pareto.cpp.o"
  "CMakeFiles/test_exp.dir/exp/test_pareto.cpp.o.d"
  "CMakeFiles/test_exp.dir/exp/test_repeat.cpp.o"
  "CMakeFiles/test_exp.dir/exp/test_repeat.cpp.o.d"
  "test_exp"
  "test_exp.pdb"
  "test_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
