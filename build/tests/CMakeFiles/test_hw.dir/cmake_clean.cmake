file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_file_counter.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_file_counter.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_linux_backend.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_linux_backend.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_msr_codec.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_msr_codec.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_rapl.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_rapl.cpp.o.d"
  "CMakeFiles/test_hw.dir/hw/test_uncore_freq.cpp.o"
  "CMakeFiles/test_hw.dir/hw/test_uncore_freq.cpp.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
