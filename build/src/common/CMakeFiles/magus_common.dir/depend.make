# Empty dependencies file for magus_common.
# This may be replaced when dependencies are built.
