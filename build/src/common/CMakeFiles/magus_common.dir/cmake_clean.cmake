file(REMOVE_RECURSE
  "CMakeFiles/magus_common.dir/log.cpp.o"
  "CMakeFiles/magus_common.dir/log.cpp.o.d"
  "CMakeFiles/magus_common.dir/stats.cpp.o"
  "CMakeFiles/magus_common.dir/stats.cpp.o.d"
  "CMakeFiles/magus_common.dir/table.cpp.o"
  "CMakeFiles/magus_common.dir/table.cpp.o.d"
  "libmagus_common.a"
  "libmagus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
