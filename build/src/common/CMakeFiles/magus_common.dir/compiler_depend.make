# Empty compiler generated dependencies file for magus_common.
# This may be replaced when dependencies are built.
