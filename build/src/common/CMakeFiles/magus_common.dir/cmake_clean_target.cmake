file(REMOVE_RECURSE
  "libmagus_common.a"
)
