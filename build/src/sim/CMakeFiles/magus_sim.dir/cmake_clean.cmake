file(REMOVE_RECURSE
  "CMakeFiles/magus_sim.dir/backends.cpp.o"
  "CMakeFiles/magus_sim.dir/backends.cpp.o.d"
  "CMakeFiles/magus_sim.dir/core_model.cpp.o"
  "CMakeFiles/magus_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/magus_sim.dir/engine.cpp.o"
  "CMakeFiles/magus_sim.dir/engine.cpp.o.d"
  "CMakeFiles/magus_sim.dir/firmware_governor.cpp.o"
  "CMakeFiles/magus_sim.dir/firmware_governor.cpp.o.d"
  "CMakeFiles/magus_sim.dir/gpu_model.cpp.o"
  "CMakeFiles/magus_sim.dir/gpu_model.cpp.o.d"
  "CMakeFiles/magus_sim.dir/memory_system.cpp.o"
  "CMakeFiles/magus_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/magus_sim.dir/node.cpp.o"
  "CMakeFiles/magus_sim.dir/node.cpp.o.d"
  "CMakeFiles/magus_sim.dir/system_preset.cpp.o"
  "CMakeFiles/magus_sim.dir/system_preset.cpp.o.d"
  "CMakeFiles/magus_sim.dir/uncore_model.cpp.o"
  "CMakeFiles/magus_sim.dir/uncore_model.cpp.o.d"
  "libmagus_sim.a"
  "libmagus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
