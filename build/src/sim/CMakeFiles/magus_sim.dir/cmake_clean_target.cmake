file(REMOVE_RECURSE
  "libmagus_sim.a"
)
