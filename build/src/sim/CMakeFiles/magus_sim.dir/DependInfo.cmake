
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/backends.cpp" "src/sim/CMakeFiles/magus_sim.dir/backends.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/backends.cpp.o.d"
  "/root/repo/src/sim/core_model.cpp" "src/sim/CMakeFiles/magus_sim.dir/core_model.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/core_model.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/magus_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/firmware_governor.cpp" "src/sim/CMakeFiles/magus_sim.dir/firmware_governor.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/firmware_governor.cpp.o.d"
  "/root/repo/src/sim/gpu_model.cpp" "src/sim/CMakeFiles/magus_sim.dir/gpu_model.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/gpu_model.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/magus_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/magus_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/system_preset.cpp" "src/sim/CMakeFiles/magus_sim.dir/system_preset.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/system_preset.cpp.o.d"
  "/root/repo/src/sim/uncore_model.cpp" "src/sim/CMakeFiles/magus_sim.dir/uncore_model.cpp.o" "gcc" "src/sim/CMakeFiles/magus_sim.dir/uncore_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/magus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/magus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/magus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/wl/CMakeFiles/magus_wl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
