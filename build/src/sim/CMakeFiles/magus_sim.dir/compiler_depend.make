# Empty compiler generated dependencies file for magus_sim.
# This may be replaced when dependencies are built.
