file(REMOVE_RECURSE
  "libmagus_exp.a"
)
