# Empty compiler generated dependencies file for magus_exp.
# This may be replaced when dependencies are built.
