file(REMOVE_RECURSE
  "CMakeFiles/magus_exp.dir/evaluation.cpp.o"
  "CMakeFiles/magus_exp.dir/evaluation.cpp.o.d"
  "CMakeFiles/magus_exp.dir/experiment.cpp.o"
  "CMakeFiles/magus_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/magus_exp.dir/metrics.cpp.o"
  "CMakeFiles/magus_exp.dir/metrics.cpp.o.d"
  "CMakeFiles/magus_exp.dir/pareto.cpp.o"
  "CMakeFiles/magus_exp.dir/pareto.cpp.o.d"
  "CMakeFiles/magus_exp.dir/repeat.cpp.o"
  "CMakeFiles/magus_exp.dir/repeat.cpp.o.d"
  "libmagus_exp.a"
  "libmagus_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
