# Empty dependencies file for magus_core.
# This may be replaced when dependencies are built.
