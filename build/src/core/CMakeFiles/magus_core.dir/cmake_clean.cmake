file(REMOVE_RECURSE
  "CMakeFiles/magus_core.dir/high_freq.cpp.o"
  "CMakeFiles/magus_core.dir/high_freq.cpp.o.d"
  "CMakeFiles/magus_core.dir/mdfs.cpp.o"
  "CMakeFiles/magus_core.dir/mdfs.cpp.o.d"
  "CMakeFiles/magus_core.dir/predictor.cpp.o"
  "CMakeFiles/magus_core.dir/predictor.cpp.o.d"
  "CMakeFiles/magus_core.dir/runtime.cpp.o"
  "CMakeFiles/magus_core.dir/runtime.cpp.o.d"
  "libmagus_core.a"
  "libmagus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
