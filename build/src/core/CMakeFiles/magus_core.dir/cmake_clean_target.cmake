file(REMOVE_RECURSE
  "libmagus_core.a"
)
