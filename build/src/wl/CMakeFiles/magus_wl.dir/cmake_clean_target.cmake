file(REMOVE_RECURSE
  "libmagus_wl.a"
)
