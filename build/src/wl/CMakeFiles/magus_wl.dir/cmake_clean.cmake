file(REMOVE_RECURSE
  "CMakeFiles/magus_wl.dir/catalog.cpp.o"
  "CMakeFiles/magus_wl.dir/catalog.cpp.o.d"
  "CMakeFiles/magus_wl.dir/io.cpp.o"
  "CMakeFiles/magus_wl.dir/io.cpp.o.d"
  "CMakeFiles/magus_wl.dir/jitter.cpp.o"
  "CMakeFiles/magus_wl.dir/jitter.cpp.o.d"
  "CMakeFiles/magus_wl.dir/patterns.cpp.o"
  "CMakeFiles/magus_wl.dir/patterns.cpp.o.d"
  "CMakeFiles/magus_wl.dir/phase.cpp.o"
  "CMakeFiles/magus_wl.dir/phase.cpp.o.d"
  "libmagus_wl.a"
  "libmagus_wl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_wl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
