
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wl/catalog.cpp" "src/wl/CMakeFiles/magus_wl.dir/catalog.cpp.o" "gcc" "src/wl/CMakeFiles/magus_wl.dir/catalog.cpp.o.d"
  "/root/repo/src/wl/io.cpp" "src/wl/CMakeFiles/magus_wl.dir/io.cpp.o" "gcc" "src/wl/CMakeFiles/magus_wl.dir/io.cpp.o.d"
  "/root/repo/src/wl/jitter.cpp" "src/wl/CMakeFiles/magus_wl.dir/jitter.cpp.o" "gcc" "src/wl/CMakeFiles/magus_wl.dir/jitter.cpp.o.d"
  "/root/repo/src/wl/patterns.cpp" "src/wl/CMakeFiles/magus_wl.dir/patterns.cpp.o" "gcc" "src/wl/CMakeFiles/magus_wl.dir/patterns.cpp.o.d"
  "/root/repo/src/wl/phase.cpp" "src/wl/CMakeFiles/magus_wl.dir/phase.cpp.o" "gcc" "src/wl/CMakeFiles/magus_wl.dir/phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/magus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
