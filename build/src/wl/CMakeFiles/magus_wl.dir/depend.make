# Empty dependencies file for magus_wl.
# This may be replaced when dependencies are built.
