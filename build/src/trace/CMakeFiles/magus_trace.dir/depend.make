# Empty dependencies file for magus_trace.
# This may be replaced when dependencies are built.
