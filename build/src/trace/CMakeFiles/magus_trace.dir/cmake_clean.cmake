file(REMOVE_RECURSE
  "CMakeFiles/magus_trace.dir/burst.cpp.o"
  "CMakeFiles/magus_trace.dir/burst.cpp.o.d"
  "CMakeFiles/magus_trace.dir/recorder.cpp.o"
  "CMakeFiles/magus_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/magus_trace.dir/time_series.cpp.o"
  "CMakeFiles/magus_trace.dir/time_series.cpp.o.d"
  "libmagus_trace.a"
  "libmagus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
