file(REMOVE_RECURSE
  "libmagus_trace.a"
)
