file(REMOVE_RECURSE
  "CMakeFiles/magus_hw.dir/file_counter.cpp.o"
  "CMakeFiles/magus_hw.dir/file_counter.cpp.o.d"
  "CMakeFiles/magus_hw.dir/linux_backend.cpp.o"
  "CMakeFiles/magus_hw.dir/linux_backend.cpp.o.d"
  "CMakeFiles/magus_hw.dir/msr.cpp.o"
  "CMakeFiles/magus_hw.dir/msr.cpp.o.d"
  "CMakeFiles/magus_hw.dir/rapl.cpp.o"
  "CMakeFiles/magus_hw.dir/rapl.cpp.o.d"
  "CMakeFiles/magus_hw.dir/uncore_freq.cpp.o"
  "CMakeFiles/magus_hw.dir/uncore_freq.cpp.o.d"
  "libmagus_hw.a"
  "libmagus_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
