
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/file_counter.cpp" "src/hw/CMakeFiles/magus_hw.dir/file_counter.cpp.o" "gcc" "src/hw/CMakeFiles/magus_hw.dir/file_counter.cpp.o.d"
  "/root/repo/src/hw/linux_backend.cpp" "src/hw/CMakeFiles/magus_hw.dir/linux_backend.cpp.o" "gcc" "src/hw/CMakeFiles/magus_hw.dir/linux_backend.cpp.o.d"
  "/root/repo/src/hw/msr.cpp" "src/hw/CMakeFiles/magus_hw.dir/msr.cpp.o" "gcc" "src/hw/CMakeFiles/magus_hw.dir/msr.cpp.o.d"
  "/root/repo/src/hw/rapl.cpp" "src/hw/CMakeFiles/magus_hw.dir/rapl.cpp.o" "gcc" "src/hw/CMakeFiles/magus_hw.dir/rapl.cpp.o.d"
  "/root/repo/src/hw/uncore_freq.cpp" "src/hw/CMakeFiles/magus_hw.dir/uncore_freq.cpp.o" "gcc" "src/hw/CMakeFiles/magus_hw.dir/uncore_freq.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/magus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
