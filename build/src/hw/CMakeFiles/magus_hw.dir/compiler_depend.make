# Empty compiler generated dependencies file for magus_hw.
# This may be replaced when dependencies are built.
