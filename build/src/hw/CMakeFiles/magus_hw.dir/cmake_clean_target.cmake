file(REMOVE_RECURSE
  "libmagus_hw.a"
)
