file(REMOVE_RECURSE
  "CMakeFiles/magus_baseline.dir/duf.cpp.o"
  "CMakeFiles/magus_baseline.dir/duf.cpp.o.d"
  "CMakeFiles/magus_baseline.dir/ups.cpp.o"
  "CMakeFiles/magus_baseline.dir/ups.cpp.o.d"
  "libmagus_baseline.a"
  "libmagus_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magus_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
