
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/duf.cpp" "src/baseline/CMakeFiles/magus_baseline.dir/duf.cpp.o" "gcc" "src/baseline/CMakeFiles/magus_baseline.dir/duf.cpp.o.d"
  "/root/repo/src/baseline/ups.cpp" "src/baseline/CMakeFiles/magus_baseline.dir/ups.cpp.o" "gcc" "src/baseline/CMakeFiles/magus_baseline.dir/ups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/magus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/magus_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/magus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
