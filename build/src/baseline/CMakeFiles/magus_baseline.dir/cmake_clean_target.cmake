file(REMOVE_RECURSE
  "libmagus_baseline.a"
)
