# Empty compiler generated dependencies file for magus_baseline.
# This may be replaced when dependencies are built.
