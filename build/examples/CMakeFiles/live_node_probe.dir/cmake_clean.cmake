file(REMOVE_RECURSE
  "CMakeFiles/live_node_probe.dir/live_node_probe.cpp.o"
  "CMakeFiles/live_node_probe.dir/live_node_probe.cpp.o.d"
  "live_node_probe"
  "live_node_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_node_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
