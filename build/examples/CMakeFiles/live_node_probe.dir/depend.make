# Empty dependencies file for live_node_probe.
# This may be replaced when dependencies are built.
